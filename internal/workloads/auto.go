package workloads

import (
	"fmt"
	"strings"
)

// The automotive workloads are workalikes of the EEMBC Autobench kernels
// the paper uses. Each implements the documented algorithm of its namesake
// on realistic synthetic data tables: the correlation study consumes their
// instruction-type footprint and off-core write stream, not EEMBC's exact
// C sources (see DESIGN.md §3 for the substitution argument).
//
// Every kernel follows the same shape: "main" is called by the harness
// with a data-derived seed in %o0, loops @ITERS@ times over its input
// tables, stores per-element results (off-core writes through the
// write-through cache) and returns a signature in %i0.

// expand substitutes the iteration count into a kernel template.
func expand(src string, iters int) string {
	return strings.ReplaceAll(src, "@ITERS@", fmt.Sprint(iters))
}

// a2time: angle-to-time conversion. Converts crankshaft angle samples to
// time delays at the sampled engine speed: t = angle*60000/rpm, clamped.
func a2timeSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5          ! signature seed
	set 60000, %o1
	set 250000, %o3       ! clamp
a2_iter:
	set a2_angles, %l0
	set a2_rpm, %l1
	set a2_res, %l2
	mov 64, %l3
a2_loop:
	ld [%l0], %l4
	ld [%l1], %l5
	umul %l4, %o1, %l6
	rd %y, %o2
	udiv %l6, %l5, %l7
	cmp %l7, %o3
	bleu a2_ok
	nop
	mov %o3, %l7
a2_ok:
	st %l7, [%l2]
	add %i5, %l7, %i5
	add %l0, 4, %l0
	add %l1, 4, %l1
	add %l2, 4, %l2
	subcc %l3, 1, %l3
	bne a2_loop
	nop
	subcc %i1, 1, %i1
	bne a2_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "a2_angles:\n" + dataWords(101+cfg.Dataset, 64, styleRange(0, 3600)) +
		"a2_rpm:\n" + dataWords(202+cfg.Dataset, 64, styleRange(600, 8000)) +
		"a2_res:\n\t.space 256\n"
	return fullRuntime(body, data+stack(192), 128)
}

// puwmod: pulse-width modulation. Computes duty cycles for target levels,
// saturates them and composes the output port image with bit operations.
func puwmodSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
	set 4096, %o1          ! PWM period
	set 4000, %o2          ! duty ceiling
pw_iter:
	set pw_targets, %l0
	set pw_port, %l1
	mov 64, %l3
	clr %o4                ! port image
pw_loop:
	ld [%l0], %l4          ! target level 0..255
	smul %l4, %o1, %l5
	sra %l5, 8, %l5        ! duty = target*period/256
	cmp %l5, %o2
	ble pw_clamped
	nop
	mov %o2, %l5
pw_clamped:
	and %l4, 7, %l6        ! channel = target & 7
	mov 1, %l7
	sll %l7, %l6, %l7      ! channel mask
	andn %o4, %l7, %o4     ! clear channel bit
	srl %l5, 11, %o5       ! high-duty flag
	andcc %o5, 1, %g0
	be pw_low
	nop
	or %o4, %l7, %o4       ! set channel bit
pw_low:
	xor %i5, %l5, %i5
	st %l5, [%l1]
	add %l0, 4, %l0
	add %l1, 4, %l1
	subcc %l3, 1, %l3
	bne pw_loop
	nop
	st %o4, [%l1]          ! final port image
	subcc %i1, 1, %i1
	bne pw_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "pw_targets:\n" + dataWords(303+cfg.Dataset, 64, styleRange(0, 256)) +
		"pw_port:\n\t.space 264\n"
	return fullRuntime(body, data+stack(192), 64)
}

// canrdr: CAN remote-data-request processing. Parses a frame queue,
// matches identifiers against a filter table, copies matching payloads
// byte-wise and maintains a wide (carry-chained) byte checksum.
func canrdrSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
cr_iter:
	set cr_frames, %l0     ! 32 frames x (header word + 2 payload words)
	set cr_out, %l1
	mov 32, %l3
	clr %o4                ! checksum low
	clr %o5                ! checksum high
cr_frame:
	ld [%l0], %l4          ! header: id in [31:21], dlc in [19:16]
	srl %l4, 21, %l5       ! id
	set cr_filters, %l6
	mov 4, %l7             ! filter count
cr_match:
	ld [%l6], %o1
	xor %o1, %l5, %o2
	andcc %o2, 0x7ff, %g0
	be cr_hit
	nop
	add %l6, 4, %l6
	subcc %l7, 1, %l7
	bne cr_match
	nop
	ba cr_next             ! no filter matched
	nop
cr_hit:
	srl %l4, 16, %o1
	and %o1, 0xf, %o1      ! dlc (0..8)
	cmp %o1, 8
	bleu cr_dlc_ok
	nop
	mov 8, %o1
cr_dlc_ok:
	add %l0, 4, %o2        ! payload source
	orcc %o1, %g0, %g0
	be cr_copied
	nop
cr_copy:
	ldub [%o2], %o3
	stb %o3, [%l1]
	addcc %o4, %o3, %o4    ! wide checksum
	addx %o5, 0, %o5
	add %o2, 1, %o2
	add %l1, 1, %l1
	subcc %o1, 1, %o1
	bne cr_copy
	nop
cr_copied:
cr_next:
	add %l0, 12, %l0
	subcc %l3, 1, %l3
	bne cr_frame
	nop
	xor %o4, %o5, %o1
	xor %i5, %o1, %i5
	subcc %i1, 1, %i1
	bne cr_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "cr_frames:\n" + canFrames(404+cfg.Dataset, 32) +
		"cr_filters:\n\t.word 0x120, 0x254, 0x3c1, 0x510\n" +
		"cr_out:\n\t.space 512\n"
	return fullRuntime(body, data+stack(192), 96)
}

// ttsprk: tooth-to-spark. Looks up and interpolates spark advance from a
// 2D calibration map indexed by engine speed and load, then schedules the
// ignition angle per cylinder.
func ttsprkSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
ts_iter:
	set ts_rpm, %l0
	set ts_load, %l1
	set ts_adv, %l2        ! output advance angles
	mov 64, %l3
	clr %o5                ! cylinder counter
ts_loop:
	ld [%l0], %l4          ! rpm sample
	srl %l4, 10, %o1       ! rpm bucket 0..7
	and %o1, 7, %o1
	ld [%l1], %l5          ! load sample
	srl %l5, 5, %o2        ! load bucket 0..7
	and %o2, 7, %o2
	sll %o1, 3, %o3        ! row*8
	add %o3, %o2, %o3
	sll %o3, 1, %o3        ! halfword index
	set ts_map, %o4
	add %o4, %o3, %o4
	ldsh [%o4], %l6        ! base advance (signed tenths of degree)
	and %l4, 1023, %o1     ! fraction within bucket
	smul %l6, %o1, %l7
	sra %l7, 10, %l7       ! interpolated advance
	add %l6, %l7, %l6
	and %o5, 3, %o1        ! cylinder = counter & 3
	add %o5, 1, %o5
	cmp %o1, 2
	bge ts_late
	nop
	add %l6, 5, %l6        ! early bank correction
	ba ts_store
	nop
ts_late:
	sub %l6, 5, %l6
ts_store:
	sth %l6, [%l2]
	add %i5, %l6, %i5
	add %l0, 4, %l0
	add %l1, 4, %l1
	add %l2, 2, %l2
	subcc %l3, 1, %l3
	bne ts_loop
	nop
	subcc %i1, 1, %i1
	bne ts_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "ts_rpm:\n" + dataWords(505+cfg.Dataset, 64, styleRange(600, 8192)) +
		"ts_load:\n" + dataWords(606+cfg.Dataset, 64, styleRange(0, 256)) +
		"ts_map:\n" + dataHalves(707+cfg.Dataset, 64, -200, 400) +
		"\t.align 4\nts_adv:\n\t.space 128\n"
	return fullRuntime(body, data+stack(192), 160)
}

// rspeed: road-speed calculation. Differentiates wheel-pulse timestamps,
// applies a moving-average filter and converts pulse periods to speed,
// tracking minimum and maximum.
func rspeedSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
	set 3600000, %o1       ! distance scale
rs_iter:
	set rs_stamps, %l0
	set rs_speed, %l2
	mov 63, %l3            ! 64 stamps -> 63 deltas
	clr %o2                ! moving average accumulator
	clr %o4                ! max speed
	set 0x7fffffff, %o5    ! min speed
rs_loop:
	ld [%l0], %l4
	ld [%l0+4], %l5
	sub %l5, %l4, %l6      ! pulse period
	add %o2, %l6, %o2
	srl %o2, 1, %o2        ! leaky average
	udiv %o1, %o2, %l7     ! speed = scale/avg
	st %l7, [%l2]
	cmp %l7, %o4
	bleu rs_notmax
	nop
	mov %l7, %o4
rs_notmax:
	cmp %l7, %o5
	bcc rs_notmin
	nop
	mov %l7, %o5
rs_notmin:
	add %i5, %l7, %i5
	add %l0, 4, %l0
	add %l2, 4, %l2
	subcc %l3, 1, %l3
	bne rs_loop
	nop
	sub %o4, %o5, %o3      ! spread
	xor %i5, %o3, %i5
	subcc %i1, 1, %i1
	bne rs_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "rs_stamps:\n" + dataMonotonic(808+cfg.Dataset, 64, 200, 5000) +
		"rs_speed:\n\t.space 256\n"
	return fullRuntime(body, data+stack(192), 128)
}

// tblook: table lookup and interpolation. For each probe x, finds the
// bracketing segment in a calibration curve by linear search and returns
// y1 + (y2-y1)*(x-x1)/(x2-x1).
func tblookSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
tb_iter:
	set tb_probes, %l0
	set tb_res, %l2
	mov 64, %l3
tb_loop:
	ld [%l0], %l4          ! probe x
	set tb_xs, %l5
	mov 0, %o1             ! segment index
tb_find:
	ld [%l5+4], %o2        ! next x breakpoint
	cmp %l4, %o2
	bleu tb_found
	nop
	add %l5, 4, %l5
	add %o1, 1, %o1
	cmp %o1, 14            ! 16 breakpoints -> 15 segments
	bl tb_find
	nop
tb_found:
	ld [%l5], %o2          ! x1
	ld [%l5+4], %o3        ! x2
	sll %o1, 2, %o4
	set tb_ys, %o5
	add %o5, %o4, %o5
	ld [%o5], %l6          ! y1
	ld [%o5+4], %l7        ! y2
	sub %l7, %l6, %l7      ! dy
	sub %l4, %o2, %o4      ! x - x1
	smul %l7, %o4, %l7
	sub %o3, %o2, %o3      ! dx
	sdiv %l7, %o3, %l7
	add %l6, %l7, %l6      ! interpolated y
	st %l6, [%l2]
	add %i5, %l6, %i5
	add %l0, 4, %l0
	add %l2, 4, %l2
	subcc %l3, 1, %l3
	bne tb_loop
	nop
	subcc %i1, 1, %i1
	bne tb_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "tb_probes:\n" + dataWords(909+cfg.Dataset, 64, styleRange(0, 15000)) +
		"tb_xs:\n" + dataBreakpoints(16, 0, 1000) +
		"tb_ys:\n" + dataWords(111+cfg.Dataset, 16, styleRange(0, 4000)) +
		"tb_res:\n\t.space 256\n"
	return fullRuntime(body, data+stack(192), 96)
}

// basefp: fixed-point arithmetic kernel (the IU has no FPU; EEMBC basefp
// on FPU-less automotive parts runs a software arithmetic layer, modeled
// here as saturating Q16.16 multiply-accumulate chains using ldd/std).
func basefpSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
bf_iter:
	set bf_in, %l0
	set bf_res, %l2
	mov 32, %l3            ! 32 pairs
bf_loop:
	ldd [%l0], %l4         ! l4 = a, l5 = b (Q16.16)
	smul %l4, %l5, %l6     ! low product
	rd %y, %l7             ! high product
	srl %l6, 16, %l6
	sll %l7, 16, %o1
	or %o1, %l6, %l6       ! q = (a*b) >> 16
	addcc %l6, %l4, %o2    ! q + a with saturation
	bvc bf_nosat
	nop
	set 0x7fffffff, %o2    ! saturate on signed overflow
	srl %l5, 31, %o3
	sub %o2, %o3, %o2      ! wrong-side fix keeps data dependence
bf_nosat:
	mov %l6, %o3
	std %o2, [%l2]         ! store pair (sum, product)
	xor %i5, %o2, %i5
	add %l0, 8, %l0
	add %l2, 8, %l2
	subcc %l3, 1, %l3
	bne bf_loop
	nop
	subcc %i1, 1, %i1
	bne bf_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "\t.align 8\nbf_in:\n" + dataWords(121+cfg.Dataset, 64, styleFull()) +
		"\t.align 8\nbf_res:\n\t.space 256\n"
	return fullRuntime(body, data+stack(192), 128)
}

// bitmnp ("bitmap"): bit manipulation. Sets, clears and toggles bit runs
// in a bitmap and counts population per word.
func bitmnpSource(cfg Config) string {
	body := expand(`
	save %sp, -96, %sp
	set @ITERS@, %i1
	mov %o0, %i5
bm_iter:
	set bm_cmds, %l0       ! command words: op in [1:0], pos in [9:4], len in [13:10]
	set bm_map, %l1
	set bm_cnt, %l2
	mov 64, %l3
bm_loop:
	ld [%l0], %l4
	srl %l4, 4, %l5
	and %l5, 31, %l5       ! bit position
	srl %l4, 10, %o1
	and %o1, 7, %o1
	add %o1, 1, %o1        ! run length 1..8
	mov 1, %o2
	sll %o2, %o1, %o2
	sub %o2, 1, %o2        ! run mask
	sll %o2, %l5, %o2      ! positioned mask
	and %l4, 3, %o3        ! operation
	ld [%l1], %l6          ! target word
	cmp %o3, 1
	bl bm_set
	nop
	be bm_clear
	nop
	xor %l6, %o2, %l6      ! toggle
	ba bm_count
	nop
bm_set:
	or %l6, %o2, %l6
	ba bm_count
	nop
bm_clear:
	andn %l6, %o2, %l6
bm_count:
	st %l6, [%l1]
	clr %o4                ! popcount
	mov %l6, %o5
bm_pop:
	andcc %o5, 1, %o3
	add %o4, %o3, %o4
	srl %o5, 1, %o5
	orcc %o5, %g0, %g0
	bne bm_pop
	nop
	stb %o4, [%l2]
	add %i5, %o4, %i5
	add %l0, 4, %l0
	add %l1, 4, %l1
	add %l2, 1, %l2
	subcc %l3, 1, %l3
	bne bm_loop
	nop
	subcc %i1, 1, %i1
	bne bm_iter
	nop
	mov %i5, %i0
	ret
	restore
`, cfg.Iterations)
	data := "bm_cmds:\n" + dataWords(131+cfg.Dataset, 64, styleFull()) +
		"bm_map:\n" + dataWords(141+cfg.Dataset, 64, styleFull()) +
		"bm_cnt:\n\t.space 64\n"
	return fullRuntime(body, data+stack(192), 192)
}
