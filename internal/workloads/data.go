package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// Deterministic synthetic data tables. All generators are seeded so that a
// workload's binary image is a pure function of (name, Config) — a
// prerequisite for reproducible fault-injection campaigns.

// style produces one data word.
type style func(r *rand.Rand) uint32

// styleRange yields uniform values in [lo, hi).
func styleRange(lo, hi int) style {
	return func(r *rand.Rand) uint32 { return uint32(lo + r.Intn(hi-lo)) }
}

// styleFull yields full-width 32-bit patterns.
func styleFull() style {
	return func(r *rand.Rand) uint32 { return r.Uint32() }
}

// dataWords emits n .word lines drawn from the style.
func dataWords(seed, n int, s style) string {
	r := rand.New(rand.NewSource(int64(seed)))
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word 0x%08x\n", s(r))
	}
	return b.String()
}

// dataHalves emits n .half lines in [lo, hi) (signed values allowed).
func dataHalves(seed, n, lo, hi int) string {
	r := rand.New(rand.NewSource(int64(seed)))
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := lo + r.Intn(hi-lo)
		fmt.Fprintf(&b, "\t.half 0x%04x\n", uint16(int16(v)))
	}
	return b.String()
}

// dataMonotonic emits n strictly increasing .word timestamps with steps
// in [minStep, maxStep).
func dataMonotonic(seed, n, minStep, maxStep int) string {
	r := rand.New(rand.NewSource(int64(seed)))
	var b strings.Builder
	v := uint32(1000)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word 0x%08x\n", v)
		v += uint32(minStep + r.Intn(maxStep-minStep))
	}
	return b.String()
}

// canFrames emits n CAN frames of 3 words each: a header with an 11-bit
// identifier in [31:21] and a DLC in [19:16], followed by 8 payload bytes.
// About half the identifiers match the benchmark's filter table.
func canFrames(seed, n int) string {
	r := rand.New(rand.NewSource(int64(seed)))
	filters := []uint32{0x120, 0x254, 0x3c1, 0x510}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var id uint32
		if r.Intn(2) == 0 {
			id = filters[r.Intn(len(filters))]
		} else {
			id = r.Uint32() & 0x7ff
		}
		dlc := uint32(r.Intn(9))
		hdr := id<<21 | dlc<<16 | r.Uint32()&0xffff
		fmt.Fprintf(&b, "\t.word 0x%08x, 0x%08x, 0x%08x\n", hdr, r.Uint32(), r.Uint32())
	}
	return b.String()
}

// dataBreakpoints emits n strictly increasing .word breakpoints starting
// at x0 with the given spacing.
func dataBreakpoints(n, x0, spacing int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word %d\n", x0+i*spacing)
	}
	return b.String()
}
