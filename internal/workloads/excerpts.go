package workloads

// Figure-3 excerpts: short initialization-phase kernels used to study the
// effect of input-data variability at fixed instruction set Is. Within
// each subset the three "applications" share identical code and differ
// only in their input data, exactly as in the paper (§4.2, "All three
// applications within a subset have identical code"). Subset A uses 8
// instruction types, subset B uses 11.

// excerptASource reads the benchmark's input table into a working buffer
// while accumulating a running sum — the archetypal init phase.
// Instruction types (8): sethi, or, ld, st, add, subcc, bne, ba.
func excerptASource(cfg Config) string {
	body := `
	set xa_in, %o0        ! sethi + or
	set xa_buf, %o1
	set 64, %o2
	set 0, %o3            ! running signature
xa_copy:
	ld [%o0], %o4
	st %o4, [%o1]
	add %o3, %o4, %o3
	add %o0, 4, %o0
	add %o1, 4, %o1
	subcc %o2, 1, %o2
	bne xa_copy
	nop                   ! sethi
	st %o3, [%o1]
	ba xa_done
	nop
xa_done:
`
	data := "xa_in:\n" + excerptData(cfg.Dataset, 64) + "xa_buf:\n\t.space 264\n"
	return bareExcerpt(body, data)
}

// excerptBSource additionally scales and hashes the copied elements.
// Instruction types (11): subset A plus sll, xor, bg.
func excerptBSource(cfg Config) string {
	body := `
	set xb_in, %o0
	set xb_buf, %o1
	set 64, %o2
	set 0, %o3
xb_copy:
	ld [%o0], %o4
	sll %o4, 2, %o5       ! scale (engineering units)
	xor %o3, %o5, %o3
	subcc %o4, 2048, %g0  ! threshold classify
	bg xb_high
	nop
	add %o5, 1, %o5
xb_high:
	st %o5, [%o1]
	add %o0, 4, %o0
	add %o1, 4, %o1
	subcc %o2, 1, %o2
	bne xb_copy
	nop
	st %o3, [%o1]
	ba xb_done
	nop
xb_done:
`
	data := "xb_in:\n" + excerptData(cfg.Dataset, 64) + "xb_buf:\n\t.space 264\n"
	return bareExcerpt(body, data)
}

// excerptData selects the input-data flavor for an excerpt. The three
// datasets of each Figure-3 subset differ in value distribution, the same
// way the EEMBC members differ in the tables their init phase loads.
func excerptData(dataset, n int) string {
	switch dataset % 3 {
	case 0: // a2time / rspeed flavor: mid-range engineering values
		return dataWords(171, n, styleRange(100, 4000))
	case 1: // ttsprk / tblook flavor: small sparse values
		return dataWords(181, n, styleRange(0, 64))
	default: // bitmap / basefp flavor: dense full-width patterns
		return dataWords(191, n, styleFull())
	}
}
