package workloads

import (
	"fmt"
	"strings"
)

// The workload runtime mirrors the structure of a bare-metal EEMBC-style
// test harness on LEON3: a trap table at the RAM base, boot code that sets
// up TBR and the stack, register-window spill/fill handlers, and an exit
// sequence that writes the benchmark's self-check signature to the output
// port and then terminates via the exit device.

// fullRuntime wraps a benchmark "main" routine (called with the standard
// calling convention; returns its signature in %o0) together with its data
// section. The harness also runs a branch-variety block and a data
// checksum, mimicking the instruction-type footprint the EEMBC test
// harness itself contributes — this is what pushes the automotive
// benchmarks to their common diversity plateau (Table 1: 47-48 types).
func fullRuntime(mainBody, data string, dataWords int) string {
	body := trapTable + `
boot:
	set 0x40000000, %g7
	wr %g7, %tbr
	set stacktop, %sp
	clr %fp
	call th_harness
	nop
	set 0x90000000, %g7   ! exit device
	st %o0, [%g7]
halt:
	ba halt
	nop

	! th_harness: checksum the input data, run main, emit the signature.
th_harness:
	save %sp, -96, %sp

	! CRC-ish checksum over the data section.
	set th_data_start, %l0
	set @DATAWORDS@, %l1
	clr %l2
chk_loop:
	ld [%l0], %l3
	xor %l2, %l3, %l2
	sll %l2, 1, %l4
	srl %l2, 31, %l5
	or %l4, %l5, %l2      ! rotate-left-1
	add %l0, 4, %l0
	subcc %l1, 1, %l1
	bne chk_loop
	nop
	ba th_mix
	nop

	! Arithmetic sweep: the common harness footprint (CRC folding, status
	! arithmetic) that every EEMBC-style workload drags in. Data-dependent
	! values, fixed instruction-type set.
th_mix:
	addcc %l2, %l2, %o1
	addxcc %o1, 3, %o1
	addx %o1, 0, %o1
	add %o1, %l2, %o1
	subcc %o1, %l2, %o2
	subxcc %o2, 1, %o2
	subx %o2, 0, %o2
	sub %o2, 5, %o2
	andcc %o1, %o2, %o3
	and %o3, 255, %o3
	andn %o1, %o3, %o4
	orcc %o3, %o4, %o3
	or %o3, 1, %o3
	xorcc %o3, %o2, %o4
	xor %o4, %l2, %o4
	xnor %o4, %o1, %o5
	sll %o5, 3, %o5
	srl %o4, 5, %o4
	sra %o3, 2, %o3
	xor %o3, %o4, %l2
	xor %l2, %o5, %l2

	! Status-buffer traffic: sub-word accesses the harness performs.
	set th_scratch, %o1
	st %l2, [%o1]
	ldub [%o1], %o2
	stb %o2, [%o1+4]
	lduh [%o1+2], %o3
	sth %o3, [%o1+6]
	add %l2, %o2, %l2
	add %l2, %o3, %l2

	! Branch-variety block: every condition executes deterministically.
	cmp %l2, %l2
	be bv1
	nop
bv1:	bne bv2
	nop
bv2:	cmp %g0, 1
	bl bv3
	nop
bv3:	bge bv4
	nop
bv4:	ble bv5
	nop
bv5:	bg bv6
	nop
bv6:	bleu bv7
	nop
bv7:	bgu bv8
	nop
bv8:	bcs bv9
	nop
bv9:	bcc bv10
	nop
bv10:	bpos bv11
	nop
bv11:	bneg bv12
	nop
bv12:	set 0x7fffffff, %o4
	addcc %o4, %o4, %g0   ! deliberate signed overflow
	bvs bv13
	nop
bv13:	bvc bv14
	nop
bv14:
	call main
	mov %l2, %o0          ! pass data checksum as seed
	! Fold main's signature with the checksum and publish it.
	xor %o0, %l2, %i5
	set 0x90000004, %l6   ! output port
	st %i5, [%l6]
	mov %o0, %i0          ! exit code is main's own return value
	ret
	restore

main:
` + mainBody + `

	.align 8
th_scratch:
	.space 8
th_data_start:
` + data + "\n"
	return strings.ReplaceAll(body, "@DATAWORDS@", fmt.Sprint(dataWords))
}

// trapTable is the vector table at the RAM base plus the window
// spill/fill handlers. Entry i of the table sits at base + 16*i.
const trapTable = `
	! tt=0 reset
	ba boot
	nop
	nop
	nop
	.org 0x40000050       ! tt=5 window overflow
	ba wovf
	nop
	nop
	nop
	.org 0x40000060       ! tt=6 window underflow
	ba wunf
	nop
	nop
	nop
	.org 0x40000100

	! Window overflow: spill the oldest frame's window to its stack and
	! rotate WIM right by one.
wovf:
	rd %wim, %l3
	srl %l3, 1, %l4
	sll %l3, 7, %l5       ! NWindows-1
	or %l4, %l5, %l4
	and %l4, 0xff, %l4    ! new WIM = ror1(old)
	wr %g0, %wim          ! clear so the save below cannot re-trap
	save %g0, %g0, %g0    ! step into the window to spill
	std %l0, [%sp]
	std %l2, [%sp+8]
	std %l4, [%sp+16]
	std %l6, [%sp+24]
	std %i0, [%sp+32]
	std %i2, [%sp+40]
	std %i4, [%sp+48]
	std %i6, [%sp+56]
	restore
	wr %l4, %wim
	jmpl %l1, %g0         ! retry the trapped save
	rett %l2

	! Window underflow: fill the window being restored into from the
	! stack and rotate WIM left by one.
wunf:
	rd %wim, %l3
	sll %l3, 1, %l4
	srl %l3, 7, %l5
	or %l4, %l5, %l4
	and %l4, 0xff, %l4    ! new WIM = rol1(old)
	wr %g0, %wim
	restore %g0, %g0, %g0 ! to the trapping frame
	restore %g0, %g0, %g0 ! to the window to fill
	ldd [%sp], %l0
	ldd [%sp+8], %l2
	ldd [%sp+16], %l4
	ldd [%sp+24], %l6
	ldd [%sp+32], %i0
	ldd [%sp+40], %i2
	ldd [%sp+48], %i4
	ldd [%sp+56], %i6
	save %g0, %g0, %g0
	save %g0, %g0, %g0
	wr %l4, %wim
	jmpl %l1, %g0         ! retry the trapped restore
	rett %l2

start:
	ba boot
	nop
`

// minimalRuntime wraps a synthetic benchmark that runs inline (no calls, no
// harness checksum) to keep its instruction diversity low, as the paper's
// synthetic benchmarks were designed to do.
func minimalRuntime(body, data string) string {
	return `
start:
	set stacktop, %sp
` + body + `
	set 0x90000004, %l6
	st %o7, [%l6]          ! publish signature
	set 0x90000000, %l7
	st %g0, [%l7]          ! exit
	nop

	.align 8
` + data + `
`
}

// bareExcerpt wraps a Figure-3 excerpt: a short initialization-phase
// kernel whose instruction-type set is tightly controlled (the wrapper
// adds only sethi/or/st, which are part of every excerpt's budget).
func bareExcerpt(body, data string) string {
	return `
start:
` + body + `
	set 0x90000004, %o5
	st %o3, [%o5]          ! publish signature
	set 0x90000000, %o5
	st %g0, [%o5]          ! exit
	nop

	.align 8
` + data + `
`
}

// stack reserves the workload stack; appended after the data section.
func stack(words int) string {
	return fmt.Sprintf("\n\t.align 8\n\t.space %d\nstacktop:\n\t.word 0\n", words*4)
}
