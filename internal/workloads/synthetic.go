package workloads

// Synthetic benchmarks, designed — like the paper's membench and intbench —
// to exercise a deliberately narrow instruction-type set and thus provide
// low-diversity points for the Pf-vs-diversity correlation (Table 1:
// diversity 18 and 20 versus 47-48 for the automotive suite).

// membench: memory-intensive. Word copy, byte copy, halfword copy and a
// strided word checksum over a working set, with almost no computation.
func membenchSource(cfg Config) string {
	body := expand(`
	set @ITERS@, %o7       ! iteration counter (kept in a register)
mb_iter:
	! Word copy 64 words.
	set mb_src, %o0
	set mb_dst, %o1
	mov 64, %o2
mb_wcopy:
	ld [%o0], %o3
	st %o3, [%o1]
	add %o0, 4, %o0
	add %o1, 4, %o1
	subcc %o2, 1, %o2
	bne mb_wcopy
	nop
	! Byte copy 64 bytes.
	set mb_src, %o0
	set mb_bytes, %o1
	mov 64, %o2
mb_bcopy:
	ldub [%o0], %o3
	stb %o3, [%o1]
	add %o0, 1, %o0
	add %o1, 1, %o1
	subcc %o2, 1, %o2
	bne mb_bcopy
	nop
	! Halfword copy 32 halves.
	set mb_src, %o0
	set mb_halves, %o1
	mov 32, %o2
mb_hcopy:
	lduh [%o0], %o3
	sth %o3, [%o1]
	add %o0, 2, %o0
	add %o1, 2, %o1
	subcc %o2, 1, %o2
	bne mb_hcopy
	nop
	! Strided masked checksum (stride 16 bytes).
	set mb_dst, %o0
	mov 16, %o2
	clr %o4
mb_sum:
	ld [%o0], %o3
	and %o3, 0xfff, %o5
	srl %o3, 20, %o3
	xor %o5, %o3, %o3
	addcc %o4, %o3, %o4
	sub %o0, -16, %o0     ! advance by stride
	subcc %o2, 1, %o2
	bne mb_sum
	nop
	cmp %o4, 0
	bge mb_pos
	nop
	sub %g0, %o4, %o4
mb_pos:
	set mb_sig, %o0
	st %o4, [%o0]
	subcc %o7, 1, %o7
	bne mb_iter
	nop
	mov %o4, %o7           ! signature for the wrapper
`, cfg.Iterations)
	data := "mb_src:\n" + dataWords(151+cfg.Dataset, 64, styleFull()) +
		"mb_dst:\n\t.space 256\nmb_bytes:\n\t.space 64\nmb_halves:\n\t.space 64\nmb_sig:\n\t.space 8\n"
	return minimalRuntime(body, data+stack(16))
}

// intbench: integer-intensive. A register-resident arithmetic chain with
// a handful of memory accesses (the paper's intbench executes only 19
// memory instructions in total).
func intbenchSource(cfg Config) string {
	body := expand(`
	set ib_seed, %o0
	ld [%o0], %o1          ! 1 load
	ld [%o0+4], %o2        ! 2
	ld [%o0+8], %o3        ! 3
	ld [%o0+12], %o4       ! 4
	set @ITERS@, %o7
ib_iter:
	add %o1, %o2, %o5
	sub %o5, %o3, %o5
	xor %o5, %o4, %o5
	and %o5, %o1, %g1
	or %g1, %o2, %g1
	xnor %g1, %o3, %g2
	sll %g2, 3, %g3
	srl %g2, 29, %g4
	or %g3, %g4, %g2       ! rotate
	sra %g2, 1, %g3
	smul %o5, %o2, %g4
	addcc %g4, %g3, %o1
	addx %o1, 0, %o1
	umul %o1, %o3, %g1
	subcc %g1, %o4, %o2
	subx %o2, 0, %o2
	orcc %o2, %g0, %g0
	bne ib_nz
	nop
	add %o2, 17, %o2       ! keep the chain alive
ib_nz:
	cmp %o1, %o2
	bg ib_swap
	nop
	ba ib_next
	nop
ib_swap:
	xor %o1, %o2, %o1
	xor %o1, %o2, %o2
	xor %o1, %o2, %o1
ib_next:
	subcc %o7, 1, %o7
	bne ib_iter
	nop
	set ib_sig, %g5
	st %o1, [%g5]          ! 5th and last data access before the wrapper
	mov %o1, %o7
`, cfg.Iterations)
	data := "ib_seed:\n" + dataWords(161+cfg.Dataset, 4, styleFull()) +
		"ib_sig:\n\t.space 8\n"
	return minimalRuntime(body, data+stack(16))
}
