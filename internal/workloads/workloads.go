// Package workloads provides the benchmark suite of the reproduction: an
// EEMBC-Autobench-workalike automotive set (puwmod, canrdr, ttsprk,
// rspeed, a2time, tblook, basefp, bitmnp), the two low-diversity synthetic
// benchmarks (membench, intbench) and the Figure-3 initialization-phase
// excerpts, all assembled to SPARC V8 machine code with the bundled
// runtime (trap table, window spill/fill handlers, exit device).
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/mem"
)

// Kind classifies a workload.
type Kind int

// Workload kinds.
const (
	Automotive Kind = iota
	Synthetic
	Excerpt
)

func (k Kind) String() string {
	switch k {
	case Automotive:
		return "automotive"
	case Synthetic:
		return "synthetic"
	case Excerpt:
		return "excerpt"
	}
	return "kind?"
}

// Config selects a workload variant.
type Config struct {
	// Iterations is the kernel iteration count; 0 selects the workload's
	// default (tuned to approximate the paper's Table 1 footprint).
	Iterations int
	// Dataset selects the input dataset (0..2 for excerpts; for full
	// benchmarks it perturbs the generated data tables).
	Dataset int
}

// Workload is an assembled benchmark.
type Workload struct {
	Name    string
	Kind    Kind
	Config  Config
	Source  string
	Program *asm.Program
}

type entry struct {
	kind     Kind
	defIters int
	src      func(Config) string
}

var registry = map[string]entry{
	"a2time":   {Automotive, 28, a2timeSource},
	"puwmod":   {Automotive, 80, puwmodSource},
	"canrdr":   {Automotive, 50, canrdrSource},
	"ttsprk":   {Automotive, 44, ttsprkSource},
	"rspeed":   {Automotive, 60, rspeedSource},
	"tblook":   {Automotive, 16, tblookSource},
	"basefp":   {Automotive, 32, basefpSource},
	"bitmnp":   {Automotive, 4, bitmnpSource},
	"membench": {Synthetic, 16, membenchSource},
	"intbench": {Synthetic, 96, intbenchSource},
	"excerptA": {Excerpt, 1, excerptASource},
	"excerptB": {Excerpt, 1, excerptBSource},
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AutomotiveNames returns the automotive benchmark names in the paper's
// Table 1 order followed by the remaining members.
func AutomotiveNames() []string {
	return []string{"puwmod", "canrdr", "ttsprk", "rspeed", "a2time", "tblook", "basefp", "bitmnp"}
}

// Table1Names returns the six benchmarks characterized in Table 1.
func Table1Names() []string {
	return []string{"puwmod", "canrdr", "ttsprk", "rspeed", "membench", "intbench"}
}

// SyntheticNames returns the synthetic benchmark names.
func SyntheticNames() []string { return []string{"membench", "intbench"} }

// ExcerptNames returns the Figure-3 excerpt identifiers as
// (subset, dataset-label) pairs flattened to "excerptA/0" style names.
func ExcerptNames() []string { return []string{"excerptA", "excerptB"} }

// Build assembles the named workload with the given configuration.
func Build(name string, cfg Config) (*Workload, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = e.defIters
	}
	src := e.src(cfg)
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return &Workload{Name: name, Kind: e.kind, Config: cfg, Source: src, Program: p}, nil
}

// Get assembles the named workload with its default configuration.
func Get(name string) (*Workload, error) { return Build(name, Config{}) }

// BuildRaw assembles an arbitrary "main" body under the full workload
// runtime (trap table, spill/fill handlers, harness, exit device). It is
// used by tests and examples that need custom programs with the standard
// environment.
func BuildRaw(mainBody string) (*asm.Program, error) {
	src := fullRuntime(mainBody, "\t.word 0\n"+stack(512), 1)
	return asm.Assemble(src, mem.RAMBase)
}

// NewMemory returns a fresh memory image loaded with the workload.
func (w *Workload) NewMemory() *mem.Memory {
	m := mem.NewMemory()
	m.LoadImage(w.Program.Origin, w.Program.Image)
	return m
}
