package workloads

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
)

func assembleForTest(src string) (*asm.Program, error) {
	return asm.Assemble(src, mem.RAMBase)
}

// runISS executes a workload on the functional emulator.
func runISS(t *testing.T, w *Workload, budget uint64) *iss.CPU {
	t.Helper()
	bus := mem.NewBus(w.NewMemory())
	c := iss.New(bus, w.Program.Entry)
	st := c.Run(budget)
	if st != iss.StatusExited {
		t.Fatalf("%s: status %v (trap %#x) after %d insts", w.Name, st, c.TrapTaken(), c.Icount)
	}
	return c
}

func TestAllWorkloadsAssembleAndRun(t *testing.T) {
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := runISS(t, w, 5_000_000)
		t.Logf("%-10s total=%7d mem=%6d diversity=%2d writes=%5d",
			name, c.Icount, c.MemoryInstCount(), c.Diversity(), len(c.Bus.Trace.Writes))
		if c.Icount < 100 {
			t.Errorf("%s: suspiciously short run (%d insts)", name, c.Icount)
		}
		if len(c.Bus.Trace.Writes) < 2 {
			t.Errorf("%s: produced almost no off-core writes", name)
		}
	}
}

func TestDiversityMatchesPaperBands(t *testing.T) {
	// Table 1: automotive 47-48 types, membench 18, intbench 20. We
	// require the same bands rather than exact equality: a broad common
	// plateau for automotive and a clearly separated low band for the
	// synthetics.
	for _, name := range AutomotiveNames() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c := runISS(t, w, 5_000_000)
		if d := c.Diversity(); d < 40 || d > 55 {
			t.Errorf("%s: diversity %d outside automotive band [40,55]", name, d)
		}
	}
	for _, name := range SyntheticNames() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c := runISS(t, w, 5_000_000)
		if d := c.Diversity(); d < 12 || d > 26 {
			t.Errorf("%s: diversity %d outside synthetic band [12,26]", name, d)
		}
	}
}

func TestExcerptDiversity(t *testing.T) {
	// Figure 3: subset A uses 8 instruction types, subset B 11.
	for ds := 0; ds < 3; ds++ {
		wa, err := Build("excerptA", Config{Dataset: ds})
		if err != nil {
			t.Fatal(err)
		}
		ca := runISS(t, wa, 100000)
		if d := ca.Diversity(); d != 8 {
			t.Errorf("excerptA/%d: diversity %d, want 8", ds, d)
		}
		wb, err := Build("excerptB", Config{Dataset: ds})
		if err != nil {
			t.Fatal(err)
		}
		cb := runISS(t, wb, 100000)
		if d := cb.Diversity(); d != 11 {
			t.Errorf("excerptB/%d: diversity %d, want 11", ds, d)
		}
	}
}

func TestExcerptDatasetsChangeDataNotCode(t *testing.T) {
	w0, _ := Build("excerptA", Config{Dataset: 0})
	w1, _ := Build("excerptA", Config{Dataset: 1})
	if w0.Source == w1.Source {
		t.Fatal("datasets 0 and 1 produced identical sources")
	}
	// The code region (up to the data label) must be identical.
	c0 := runISS(t, w0, 100000)
	c1 := runISS(t, w1, 100000)
	if c0.Diversity() != c1.Diversity() {
		t.Errorf("same code, different diversity: %d vs %d", c0.Diversity(), c1.Diversity())
	}
	if c0.Bus.Out()[0] == c1.Bus.Out()[0] {
		t.Error("different data produced identical signatures")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	w1, err := Get("canrdr")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Get("canrdr")
	if err != nil {
		t.Fatal(err)
	}
	if string(w1.Program.Image) != string(w2.Program.Image) {
		t.Fatal("two builds of the same workload differ")
	}
	c1 := runISS(t, w1, 5_000_000)
	c2 := runISS(t, w2, 5_000_000)
	if c1.Icount != c2.Icount {
		t.Errorf("icount differs: %d vs %d", c1.Icount, c2.Icount)
	}
	if d := c1.Bus.Trace.Divergence(&c2.Bus.Trace); d != -1 {
		t.Errorf("off-core traces diverge at %d", d)
	}
}

func TestIterationScaling(t *testing.T) {
	// Doubling iterations must roughly double the executed instructions
	// (Figure 4 depends on this parameter).
	w2, err := Build("rspeed", Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	w4, err := Build("rspeed", Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	c2 := runISS(t, w2, 5_000_000)
	c4 := runISS(t, w4, 5_000_000)
	ratio := float64(c4.Icount) / float64(c2.Icount)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("4/2 iteration instruction ratio = %.2f, want ~2", ratio)
	}
	// Same instruction-type set regardless of iterations.
	if c2.Diversity() != c4.Diversity() {
		t.Errorf("diversity changed with iterations: %d vs %d", c2.Diversity(), c4.Diversity())
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Get("no-such-benchmark"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestTable1NamesExist(t *testing.T) {
	for _, n := range Table1Names() {
		if _, err := Get(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestWindowSpillFillUnderDeepCalls(t *testing.T) {
	// The full runtime's call chain (harness -> main) is shallow, but the
	// spill/fill handlers must still be exercised somewhere: build a
	// dedicated deep-recursion program on the same runtime.
	src := fullRuntime(`
	save %sp, -96, %sp
	mov 12, %o0            ! depth > NWindows forces spills and fills
	call rec
	nop
	mov %o0, %i0
	ret
	restore
rec:
	save %sp, -96, %sp
	cmp %i0, 0
	be rec_base
	nop
	sub %i0, 1, %o0
	call rec
	nop
	add %o0, 1, %i0        ! rebuild the count on the way out
	ret
	restore
rec_base:
	clr %i0
	ret
	restore
`, "\t.word 0\n"+stack(512), 1)
	p, err := assembleForTest(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	c := iss.New(mem.NewBus(m), p.Entry)
	if st := c.Run(1_000_000); st != iss.StatusExited {
		t.Fatalf("status %v (trap %#x)", st, c.TrapTaken())
	}
	if got := c.Bus.ExitCode(); got != 12 {
		t.Errorf("recursion result = %d, want 12", got)
	}
}
